(* lesim — run a single jamming-resistant leader election from the
   command line.

     dune exec bin/lesim.exe -- --protocol lesk --n 4096 --eps 0.5 \
       --adversary greedy --window 64 --verbose
*)

module E = Jamming_experiments
module Metrics = Jamming_sim.Metrics
module Dynamic = Jamming_sim.Dynamic
module Churn = Jamming_faults.Churn
module Atomic_io = Jamming_store.Atomic_io

let protocols ~eps =
  [
    ("lesk", E.Specs.lesk ~eps);
    ("lesu", E.Specs.lesu ());
    ("estimation", E.Specs.estimation);
    ("arss", E.Specs.arss);
    ("willard", E.Specs.willard);
    ("sawtooth", E.Specs.sawtooth);
    ("geometric", E.Specs.geometric_sweep);
    ("backoff", E.Specs.backoff);
    ("known-n", E.Specs.known_n);
  ]

(* "pattern:JJ.." selects the oblivious schedule adversary. *)
let pattern_adversary spec =
  {
    E.Specs.a_name = "pattern:" ^ spec;
    a_make = (fun ~seed:_ ~n:_ ~eps:_ ~window:_ -> Jamming_adversary.Adversary.pattern spec);
  }

let adversaries ~eps =
  [
    ("none", E.Specs.no_jamming);
    ("greedy", E.Specs.greedy);
    ("random", E.Specs.random_jam ~p:0.5);
    ("front-loaded", E.Specs.front_loaded);
    ("periodic", E.Specs.periodic);
    ("silence-breaker", E.Specs.silence_breaker);
    ("streak-saver", E.Specs.streak_saver);
    ("single-suppressor", E.Specs.single_suppressor ~eps_protocol:eps);
    ("estimate-twister", E.Specs.estimate_twister ~eps_protocol:eps);
    ("estimation-staller", E.Specs.estimation_staller);
  ]

(* --churn grammar:
     none
     kill:GRACE:KILLS                        adaptive leader killer
     rate:EVERY:P_JOIN:P_LEAVE:BURST:HORIZON rate- and burst-bounded churn
     events:2+3,50-leader,80-member          explicit oblivious schedule
   (event syntax matches Churn.event_to_string: AT+K joins K stations,
   AT-leader / AT-member crash one). *)
let parse_churn spec =
  let num what conv s =
    match conv s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "--churn: %s %S is not a number" what s)
  in
  let int_ what s = num what int_of_string_opt s in
  let float_ what s = num what float_of_string_opt s in
  let ( let* ) = Result.bind in
  let parse_event s =
    match String.index_opt s '+' with
    | Some i ->
        let* at = int_ "slot" (String.sub s 0 i) in
        let* k = int_ "join count" (String.sub s (i + 1) (String.length s - i - 1)) in
        Ok { Churn.at; kind = Churn.Join k }
    | None -> (
        match String.index_opt s '-' with
        | Some i -> (
            let* at = int_ "slot" (String.sub s 0 i) in
            match String.sub s (i + 1) (String.length s - i - 1) with
            | "leader" -> Ok { Churn.at; kind = Churn.Leave Churn.Leader }
            | "member" -> Ok { Churn.at; kind = Churn.Leave Churn.Member }
            | v -> Error (Printf.sprintf "--churn: unknown victim %S (leader|member)" v))
        | None -> Error (Printf.sprintf "--churn: malformed event %S" s))
  in
  match String.split_on_char ':' spec with
  | [ "none" ] -> Ok Churn.none
  | [ "kill"; g; k ] ->
      let* grace = int_ "grace" g in
      let* max_kills = int_ "kill count" k in
      Ok (Churn.Leader_killer { grace; max_kills })
  | [ "rate"; e; pj; pl; b; h ] ->
      let* every = int_ "period" e in
      let* p_join = float_ "join rate" pj in
      let* p_leave = float_ "leave rate" pl in
      let* max_burst = int_ "burst" b in
      let* horizon = int_ "horizon" h in
      Ok (Churn.Rate { every; p_join; p_leave; max_burst; horizon })
  | "events" :: rest ->
      let evs = String.split_on_char ',' (String.concat ":" rest) in
      let* events =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* e = parse_event (String.trim s) in
            Ok (e :: acc))
          (Ok []) evs
        |> Result.map List.rev
      in
      Ok (Churn.Oblivious events)
  | _ ->
      Error
        (Printf.sprintf
           "--churn: unknown spec %S (none | kill:G:K | rate:E:PJ:PL:B:H | events:...)" spec)

let run_churned ~engine ~churn ~restart_after ~setup ~seed ~reps ~verbose ~json_out
    adversary =
  let sample =
    E.Runner.replicate_churn ~base_seed:seed ~engine ~churn ?restart_after ~reps setup
      adversary
  in
  if verbose then
    Array.iteri
      (fun i r -> Format.printf "run %2d: %a@." i Dynamic.pp_result r)
      sample.E.Runner.c_results;
  Format.printf
    "@[<v>churn: %s@ elections completed (mean): %.2f@ leaderless slots (mean): %.1f@ \
     max leaderless interval: %d@ healed: %s@]@."
    sample.E.Runner.c_churn
    (E.Runner.mean_elections_completed sample)
    (E.Runner.mean_leaderless_slots sample)
    (E.Runner.max_leaderless_interval sample)
    (E.Table.fmt_pct (E.Runner.healed_rate sample));
  match json_out with
  | None -> ()
  | Some path ->
      Atomic_io.write_json ~path (E.Runner.churn_sample_to_json ~include_results:true sample);
      Format.printf "JSON written: %s@." path

let run protocol_name adversary_name n eps window max_slots seed reps jobs engine_name
    weak_cd energy verbose trace churn_spec restart_after json_out cache_opts =
  let (_ : int) = Cli.install_jobs jobs in
  let fail fmt = Format.kasprintf (fun s -> `Error (false, s)) fmt in
  let adversary_lookup name =
    match String.index_opt name ':' with
    | Some i when String.sub name 0 i = "pattern" ->
        Some (pattern_adversary (String.sub name (i + 1) (String.length name - i - 1)))
    | _ -> List.assoc_opt name (adversaries ~eps)
  in
  match List.assoc_opt protocol_name (protocols ~eps), adversary_lookup adversary_name with
  | None, _ -> fail "unknown protocol %S (try: %s)" protocol_name
                 (String.concat ", " (List.map fst (protocols ~eps)))
  | _, None -> fail "unknown adversary %S (try: %s)" adversary_name
                 (String.concat ", " (List.map fst (adversaries ~eps)))
  | Some protocol, Some adversary ->
      let setup = { E.Runner.n; eps; window; max_slots } in
      let shown_protocol =
        if engine_name = "lmr" then Jamming_core.Lmr.name else protocol.E.Specs.p_name
      in
      Format.printf "protocol %s vs adversary %s, %a, %d rep(s)@." shown_protocol
        adversary.E.Specs.a_name E.Runner.pp_setup setup reps;
      (* --engine: which simulation core executes the slots.
           auto      — uniform (trichotomy sampling), or the flat-pool
                       notification engine when --weak-cd is given;
           uniform   — force the trichotomy-sampling engine;
           exact     — force the per-station O(n)/slot engine (behind
                       --weak-cd: the closure notification oracle, kept
                       for differential debugging — bit-identical to
                       auto's pool, just slower);
           aggregate — the class-population counting engine: O(#classes)
                       per slot, so n = 10^9 is fine on one core;
           lmr       — swap the protocol itself for the known-n
                       log-logarithmic awake-time election (LMR); pairs
                       naturally with --energy. *)
      let weak_name = protocol.E.Specs.p_name ^ "+Notification" in
      let weak_engine () =
        let pool =
          if protocol_name = "lesk" then Jamming_core.Lewk.pool ~eps ()
          else Jamming_core.Lewu.pool ()
        in
        E.Runner.Pooled { name = weak_name; cd = Jamming_channel.Channel.Weak_cd; pool }
      in
      let weak_closure_engine () =
        let factory =
          if protocol_name = "lesk" then Jamming_core.Lewk.station ~eps ()
          else Jamming_core.Lewu.station ()
        in
        E.Runner.Exact
          { name = weak_name; cd = Jamming_channel.Channel.Weak_cd; factory }
      in
      let choose_engine () =
        match engine_name with
        | "auto" -> Ok (if weak_cd then weak_engine () else E.Runner.Uniform protocol)
        | "uniform" ->
            if weak_cd then
              Error "--engine uniform conflicts with --weak-cd (Notification runs on the exact engine)"
            else Ok (E.Runner.Uniform protocol)
        | "exact" -> (
            if weak_cd then Ok (weak_closure_engine ())
            else
              match protocol_name with
              | "lesk" ->
                  Ok
                    (E.Runner.Exact
                       {
                         name = "LESK-exact";
                         cd = Jamming_channel.Channel.Strong_cd;
                         factory = Jamming_core.Lesk.station ~eps;
                       })
              | "lesu" ->
                  Ok
                    (E.Runner.Exact
                       {
                         name = "LESU-exact";
                         cd = Jamming_channel.Channel.Strong_cd;
                         factory = Jamming_core.Lesu.station ();
                       })
              | _ -> Error "--engine exact supports lesk and lesu only")
        | "aggregate" ->
            if weak_cd then Error "--engine aggregate is strong-CD only (drop --weak-cd)"
            else (
              match protocol_name with
              | "lesk" -> Ok (E.Runner.aggregate_lesk ~eps ())
              | "lesu" -> Ok (E.Runner.aggregate_lesu ())
              | _ -> Error "--engine aggregate supports lesk and lesu only")
        | "lmr" ->
            if weak_cd then Error "--engine lmr is strong-CD only (drop --weak-cd)"
            else Ok (E.Runner.pooled_lmr ())
        | other ->
            Error
              (Printf.sprintf
                 "unknown engine %S (try: auto, uniform, exact, aggregate, lmr)" other)
      in
      if weak_cd && protocol_name <> "lesk" && protocol_name <> "lesu" then
        fail "--weak-cd supports lesk (as LEWK) and lesu (as LEWU) only"
      else begin
        match parse_churn churn_spec, choose_engine () with
        | Error e, _ | _, Error e -> fail "%s" e
        | Ok churn, Ok engine when (not (Churn.is_null churn)) || restart_after <> None -> (
            (* Dynamic population: chained self-healing elections. *)
            if engine_name = "aggregate" then
              fail
                "the aggregate engine does not support --churn/--restart-after \
                 (population counts lose station identity)"
            else if engine_name = "lmr" then
              fail
                "--engine lmr does not support --churn/--restart-after (LMR stations \
                 synchronize on a shared cycle clock)"
            else if energy then
              fail "--energy does not support --churn/--restart-after (awake slots \
                    cannot be attributed across incarnations)"
            else
            let store = Cli.store_of cache_opts in
            E.Runner.set_store store;
            match
              run_churned ~engine ~churn ~restart_after ~setup ~seed ~reps ~verbose
                ~json_out adversary
            with
            | () ->
                (match store with Some st -> Cli.report_store_stats st | None -> ());
                `Ok ()
            | exception Invalid_argument msg -> fail "%s" msg
            | exception Jamming_sim.Monitor.Violation v ->
                fail "monitor violation: %s" (Jamming_sim.Monitor.violation_to_string v))
        | Ok _, Ok engine ->
        let store = Cli.store_of cache_opts in
        E.Runner.set_store store;
        let sample =
          E.Runner.replicate ~base_seed:seed ~energy ~engine ~reps setup adversary
        in
        if verbose then
          Array.iteri
            (fun i r -> Format.printf "run %2d: %a@." i Metrics.pp_result r)
            sample.E.Runner.results;
        let slots = Array.map (fun r -> float_of_int r.Metrics.slots) sample.E.Runner.results in
        let s = Jamming_stats.Descriptive.summarize slots in
        Format.printf "@[<v>slots: %a@ success rate: %s@ jammed fraction (median): %.2f@]@."
          Jamming_stats.Descriptive.pp_summary s
          (E.Table.fmt_pct (E.Runner.success_rate sample))
          (E.Runner.median_jammed_fraction sample);
        if energy then
          Format.printf "median awake slots: %.1f@."
            (E.Runner.median_awake_slots sample);
        (match json_out with
        | None -> ()
        | Some path ->
            Atomic_io.write_json ~path
              (E.Runner.sample_to_json ~include_results:true sample);
            Format.printf "JSON written: %s@." path);
        (match store with Some st -> Cli.report_store_stats st | None -> ());
        if trace > 0 then begin
          (* One extra, separately seeded run with a slot trace attached
             as an observer. *)
          let t = Jamming_sim.Trace.create ~capacity:trace in
          let r =
            E.Runner.run ~observers:[ Jamming_sim.Trace.observer t ] ~engine setup
              adversary ~seed
          in
          Format.printf "@.--- last %d slots of a traced run (%d slots total) ---@.%a"
            (Int.min trace r.Metrics.slots)
            r.Metrics.slots Jamming_sim.Trace.pp t
        end;
        `Ok ()
      end

open Cmdliner

let cmd =
  let protocol =
    Arg.(value & opt string "lesk" & info [ "protocol"; "p" ] ~doc:"Protocol to run.")
  in
  let adversary =
    Arg.(value & opt string "greedy" & info [ "adversary"; "a" ] ~doc:"Jamming strategy.")
  in
  (* Accepts plain ints and scientific notation ("1e8", "2.5e6") so
     population-scale runs don't need nine zeros typed out. *)
  let population_conv =
    let parse s =
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> (
          match float_of_string_opt s with
          | Some f
            when Float.is_finite f && f >= 1.0 && f <= 1e18
                 && Float.equal (Float.round f) f ->
              Ok (int_of_float f)
          | Some _ | None ->
              Error (`Msg (Printf.sprintf "invalid station count %S (try 4096 or 1e8)" s)))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let n =
    Arg.(
      value
      & opt population_conv 1024
      & info [ "n"; "stations" ] ~docv:"N"
          ~doc:"Number of stations; scientific notation is accepted (e.g. $(b,1e8)).")
  in
  let eps =
    Arg.(value & opt float 0.5 & info [ "eps" ] ~doc:"Adversary tolerance (0 < eps <= 1).")
  in
  let window = Arg.(value & opt int 64 & info [ "window"; "T" ] ~doc:"Adversary window T.") in
  let max_slots = Arg.(value & opt int 1_000_000 & info [ "max-slots" ] ~doc:"Slot cap.") in
  let reps = Arg.(value & opt int 1 & info [ "reps" ] ~doc:"Number of replications.") in
  let engine =
    Arg.(
      value
      & opt string "auto"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Simulation engine: $(b,auto) (uniform, or exact behind --weak-cd), \
             $(b,uniform), $(b,exact), $(b,aggregate) — the class-population \
             counting engine (lesk/lesu, strong-CD) that scales to n = 1e9 — or \
             $(b,lmr), which swaps in the known-n LMR election with \
             log-logarithmic awake time (strong-CD; pairs with $(b,--energy)).")
  in
  let weak_cd =
    Arg.(value & flag & info [ "weak-cd" ] ~doc:"Run in weak-CD via Notification (exact engine).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every run.") in
  let trace =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~doc:"Also run one traced election and print its last $(docv) slots."
          ~docv:"SLOTS")
  in
  let churn =
    Arg.(
      value & opt string "none"
      & info [ "churn" ] ~docv:"SPEC"
          ~doc:
            "Run chained self-healing elections over a churning population.  $(docv) is \
             $(b,none), $(b,kill:GRACE:KILLS) (crash each elected leader GRACE slots \
             after it wins, KILLS times), $(b,rate:EVERY:P_JOIN:P_LEAVE:BURST:HORIZON) \
             (seeded rate churn), or $(b,events:2+3,50-leader,...) (explicit \
             schedule).")
  in
  let restart_after =
    Arg.(
      value & opt (some int) None
      & info [ "restart-after" ] ~docv:"SLOTS"
          ~doc:
            "Abandon an election attempt that has not completed after $(docv) slots and \
             re-elect with fresh incarnations (implies the dynamic driver).")
  in
  let json_out =
    Cli.json_out ~doc:"Write the sample (setup, per-run results, digests) as JSON to $(docv)."
  in
  let term =
    Term.(
      ret
        (const run $ protocol $ adversary $ n $ eps $ window $ max_slots $ Cli.seed ()
       $ reps $ Cli.jobs $ engine $ weak_cd $ Cli.energy $ verbose $ trace $ churn
       $ restart_after $ json_out $ Cli.cache_opts))
  in
  Cmd.v
    (Cmd.info "lesim" ~doc:"Simulate jamming-resistant leader election (Klonowski-Pajak 2015)")
    term

let () = exit (Cmd.eval cmd)
