(* cli — the flag vocabulary shared by lesim, sweep and soak.

   One definition each for --jobs, --seed, --cache/--no-cache/--resume/
   --cache-dir, --telemetry, --energy and --json-out, so the three
   binaries agree on spelling, help text and environment story:

     JAMMING_JOBS=N   overrides the detected domain count
     JAMMING_CACHE=1  turns the run store on by default

   Resolution rules (identical everywhere):
     - --resume implies --cache (a resumed run is a cached run whose
       completed cells hit);
     - JAMMING_CACHE in {1, true, yes} flips the cache default on;
     - --no-cache beats everything. *)

module E = Jamming_experiments
module Store = Jamming_store.Store
open Cmdliner

(* --- parallelism --- *)

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run replications on $(docv) domains (0 or omitted = all available; \
           JAMMING_JOBS overrides the detected count).")

(* [install_jobs jobs] resolves --jobs against JAMMING_JOBS / the
   machine and installs the result as the process default, so every
   [Runner.Pool.create ()] picks it up.  Returns the resolved count. *)
let install_jobs jobs =
  let resolved =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ | None -> E.Runner.recommended_jobs ()
  in
  E.Runner.default_jobs := resolved;
  resolved

(* --- seeding --- *)

let seed ?(default = 42) () =
  Arg.(
    value & opt int default
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Base random seed; every cell's per-rep streams are split from it.")

(* [install_seed seed] makes --seed the process-default base seed, so
   cells built without an explicit [?base_seed] (the whole experiment
   registry) are re-seeded in one place. *)
let install_seed seed = E.Runner.default_base_seed := seed

(* --- run store --- *)

type cache_opts = { cache : bool; no_cache : bool; resume : bool; cache_dir : string }

let cache_opts =
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Persist every computed cell in the content-addressed run store and \
             reuse persisted results (JAMMING_CACHE=1 enables this by default).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the run store even if JAMMING_CACHE is set.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted run: implies $(b,--cache), so cells completed by \
             the previous run are loaded from the store instead of recomputed.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "results/cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Run store root (default results/cache).")
  in
  let pack cache no_cache resume cache_dir = { cache; no_cache; resume; cache_dir } in
  Term.(const pack $ cache $ no_cache $ resume $ cache_dir)

let cache_enabled { cache; no_cache; resume; cache_dir = _ } =
  let env_default =
    match Sys.getenv_opt "JAMMING_CACHE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  (cache || resume || env_default) && not no_cache

(* The store the options ask for, or [None] when caching is off. *)
let store_of opts =
  if cache_enabled opts then Some (Store.create ~root:opts.cache_dir ()) else None

(* Stats go to stderr so stdout (tables, reports) stays byte-identical
   between cold and warm passes — CI diffs it. *)
let report_store_stats st =
  let disk = Store.disk_stats st in
  Format.eprintf "store: %a entries=%d disk_bytes=%d@." Store.pp_io_stats
    (Store.io_stats st) disk.Store.entries disk.Store.bytes

(* --- energy metering --- *)

let energy =
  Arg.(
    value & flag
    & info [ "energy" ]
        ~doc:
          "Meter per-station energy: every static cell's runs carry an \
           awake/tx/listen/sleep summary, folded into telemetry and \
           $(b,--json-out).  Metering never touches a random stream, so \
           results are otherwise unchanged; churning cells are never metered.")

(* [install_energy energy] makes --energy the process default, so cells
   built without an explicit [?energy] (the whole experiment registry)
   are metered in one place. *)
let install_energy energy = E.Runner.default_energy := energy

(* --- output --- *)

let telemetry =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"Print a telemetry summary (counters, timers, histograms).")

let json_out ~doc =
  Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"FILE" ~doc)
