(* Benchmark harness.

   Part 1 (Bechamel): one Test.make per experiment of EXPERIMENTS.md —
   each microbenchmark times one representative election/run of that
   experiment's cell — plus microbenchmarks of the simulator's hot
   primitives.

   Part 2: regenerates every table and figure (E1..E17, F1, F2, A1..A9) at
   Quick scale; set BENCH_FULL=1 for the EXPERIMENTS.md parameters.  Each
   experiment is metered (wall time, slots simulated, slots/sec) and the
   whole run is written to BENCH_<ISO-date>.json; set BENCH_BASELINE to a
   previous BENCH_*.json to diff slots/sec per cell — the diff GATES the
   run (exit 1 when any cell falls below half its baseline throughput)
   unless BENCH_GATE=off.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
module E = Jamming_experiments
module Prng = Jamming_prng.Prng
module Sample = Jamming_prng.Sample
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Core = Jamming_core

let run_cell ?(n = 1024) ?(eps = 0.5) ?(window = 64) ?(max_slots = 2_000_000) protocol
    adversary seed =
  let setup = { E.Runner.n; eps; window; max_slots } in
  ignore (E.Runner.run ~engine:(E.Runner.Uniform protocol) setup adversary ~seed)

let exact_engine ~name ~cd factory = E.Runner.Exact { name; cd; factory }

let seed_counter = ref 0

let staged f =
  Staged.stage (fun () ->
      incr seed_counter;
      f !seed_counter)

(* --- one microbenchmark per experiment --- *)

let experiment_tests =
  [
    Test.make ~name:"E1 lesk-scaling-n (one n=4096 election, greedy)"
      (staged (run_cell ~n:4096 (E.Specs.lesk ~eps:0.5) E.Specs.greedy));
    Test.make ~name:"E2 lesk-scaling-T (one T=4096 election)"
      (staged (run_cell ~n:256 ~window:4096 (E.Specs.lesk ~eps:0.5) E.Specs.greedy));
    Test.make ~name:"E3 lesk-eps (one eps=0.25 election)"
      (staged (run_cell ~eps:0.25 (E.Specs.lesk ~eps:0.25) E.Specs.greedy));
    Test.make ~name:"E4 lower-bound (known-n vs front-loaded)"
      (staged (run_cell ~n:256 ~window:2048 E.Specs.known_n E.Specs.front_loaded));
    Test.make ~name:"E5 estimation-accuracy (one n=16384 estimation)"
      (staged (fun seed ->
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:64 ~eps:0.5 in
           ignore
             (Core.Size_approx.run ~n:16384 ~rng
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:200_000 ())));
    Test.make ~name:"E6 lesu-scaling (one n=8192 LESU election)"
      (staged (run_cell ~n:8192 (E.Specs.lesu ()) E.Specs.greedy));
    Test.make ~name:"E7 notification-overhead (one pooled weak-CD LEWK election, n=32)"
      (staged (fun seed ->
           let setup = { E.Runner.n = 32; eps = 0.5; window = 32; max_slots = 500_000 } in
           ignore
             (E.Runner.run ~engine:(E.Runner.pooled_lewk ~eps:0.5 ()) setup E.Specs.greedy
                ~seed)));
    Test.make ~name:"E8 vs-arss (one ARSS election, n=1024)"
      (staged (run_cell ~n:1024 E.Specs.arss E.Specs.greedy));
    Test.make ~name:"E9 adversary-ablation (LESK vs single-suppressor)"
      (staged (run_cell (E.Specs.lesk ~eps:0.5) (E.Specs.single_suppressor ~eps_protocol:0.5)));
    Test.make ~name:"E10 success-probability (one LESK n=64 election)"
      (staged (run_cell ~n:64 (E.Specs.lesk ~eps:0.5) E.Specs.greedy));
    Test.make ~name:"E11 slot-taxonomy (instrumented LESK election)"
      (staged (fun seed ->
           let tracker = Core.Taxonomy.create ~eps:0.5 ~n:256 in
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:64 ~eps:0.5 in
           ignore
             (Jamming_sim.Uniform_engine.run
                ~observers:
                  [ Jamming_sim.Observer.of_on_slot (Core.Taxonomy.on_slot tracker) ]
                ~n:256 ~rng
                ~protocol:(Core.Lesk.uniform ~eps:0.5 ())
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:500_000 ())));
    Test.make ~name:"E12 energy (one LESK election with energy accounting)"
      (staged (run_cell ~n:16384 (E.Specs.lesk ~eps:0.5) E.Specs.greedy));
    Test.make ~name:"E13 no-cd-frontier (one no-CD sawtooth selection, n=64)"
      (staged (fun seed ->
           let setup = { E.Runner.n = 64; eps = 0.5; window = 32; max_slots = 100_000 } in
           ignore
             (E.Runner.run
                ~engine:
                  (exact_engine ~name:"sawtooth" ~cd:Jamming_channel.Channel.No_cd
                     (Jamming_baselines.Nakano_olariu.station_sawtooth ()))
                setup E.Specs.greedy ~seed)));
    Test.make ~name:"E14 fair-use (10 chained elections, n=8)"
      (staged (fun seed ->
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:32 ~eps:0.5 in
           ignore
             (Core.Fair_use.run ~rounds:10 ~n:8 ~eps:0.5 ~rng
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:1_000_000 ())));
    Test.make ~name:"E15 size-approx-refined (one n=10^4 refinement)"
      (staged (fun seed ->
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:64 ~eps:0.5 in
           ignore
             (Core.Size_approx.refine ~n:10_000 ~rng
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:500_000 ())));
    Test.make ~name:"E16 energy-cap (one capped LESK election, n=64)"
      (staged (fun seed ->
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:32 ~eps:0.5 in
           ignore
             (Core.Energy_cap.run_lesk ~cap:32 ~n:64 ~eps:0.5 ~rng
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:20_000 ())));
    Test.make ~name:"F1 u-walk (one traced LESK election, n=4096)"
      (staged (fun seed ->
           let replica = Core.Lesk.Logic.create ~eps:0.4 () in
           let setup = { E.Runner.n = 4096; eps = 0.4; window = 64; max_slots = 100_000 } in
           ignore
             (E.Runner.run
                ~observers:
                  [
                    Jamming_sim.Observer.of_on_slot (fun r ->
                        Core.Lesk.Logic.on_state replica r.Jamming_sim.Metrics.state);
                  ]
                ~engine:(E.Runner.Uniform (E.Specs.lesk ~eps:0.4))
                setup E.Specs.greedy ~seed)));
    Test.make ~name:"F2 time-distribution (one LESK n=1024 election)"
      (staged (run_cell ~n:1024 (E.Specs.lesk ~eps:0.5) E.Specs.greedy));
    Test.make ~name:"A1 engine-equivalence (one exact-engine LESK, n=64)"
      (staged (fun seed ->
           let setup = { E.Runner.n = 64; eps = 0.5; window = 32; max_slots = 200_000 } in
           ignore
             (E.Runner.run
                ~engine:
                  (exact_engine ~name:"LESK-exact" ~cd:Jamming_channel.Channel.Strong_cd
                     (Core.Lesk.station ~eps:0.5))
                setup E.Specs.greedy ~seed)));
    Test.make ~name:"A2 lesk-step-ablation (a = 32/eps variant)"
      (staged (run_cell (E.Specs.lesk_with_a ~eps:0.5 ~a:64.0) E.Specs.greedy));
    Test.make ~name:"A3 lesu-calibration (c = 1 variant)"
      (staged
         (run_cell
            (E.Specs.lesu ~config:{ Core.Lesu.default_config with Core.Lesu.c = 1.0 } ())
            E.Specs.greedy));
    Test.make ~name:"A4 estimation-threshold (one L=8 estimation)"
      (staged (fun seed ->
           let rng = Prng.create ~seed in
           let budget = Budget.create ~window:64 ~eps:0.5 in
           ignore
             (Core.Size_approx.run ~threshold:8 ~n:1024 ~rng
                ~adversary:(Adversary.greedy ())
                ~budget ~max_slots:200_000 ())));
    Test.make ~name:"A7 churn-reelection-chain (adaptive killer, 4 kills, n=64)"
      (staged (fun seed ->
           let setup = { E.Runner.n = 64; eps = 0.5; window = 32; max_slots = 200_000 } in
           ignore
             (E.Runner.run_churn
                ~engine:
                  (E.Runner.Exact
                     {
                       name = "LESK";
                       cd = Jamming_channel.Channel.Strong_cd;
                       factory = Core.Lesk.station ~eps:0.5;
                     })
                ~churn:(Jamming_faults.Churn.Leader_killer { grace = 64; max_kills = 4 })
                ~restart_after:800_000 setup E.Specs.greedy ~seed)));
    Test.make ~name:"A8 aggregate-equivalence (one aggregate n=1e8 election)"
      (staged (fun seed ->
           let setup =
             { E.Runner.n = 100_000_000; eps = 0.5; window = 64; max_slots = 200_000 }
           in
           ignore
             (E.Runner.run
                ~engine:(E.Runner.aggregate_lesk ~eps:0.5 ())
                setup E.Specs.greedy ~seed)));
    Test.make ~name:"A9 awake-scaling (one metered pooled LMR election, n=1e4)"
      (staged (fun seed ->
           let setup =
             { E.Runner.n = 10_000; eps = 0.5; window = 64; max_slots = 200_000 }
           in
           ignore
             (E.Runner.run ~energy:true ~engine:(E.Runner.pooled_lmr ()) setup
                E.Specs.no_jamming ~seed)));
    Test.make ~name:"E17 energy-jamming (one metered LMR election vs greedy, n=4096)"
      (staged (fun seed ->
           let setup =
             { E.Runner.n = 4096; eps = 0.5; window = 64; max_slots = 200_000 }
           in
           ignore
             (E.Runner.run ~energy:true ~engine:(E.Runner.pooled_lmr ()) setup
                E.Specs.greedy ~seed)));
  ]

(* --- simulator hot-path microbenchmarks --- *)

let primitive_tests =
  let rng = Prng.create ~seed:1 in
  [
    Test.make ~name:"prng bits64" (Staged.stage (fun () -> ignore (Prng.bits64 rng)));
    Test.make ~name:"trichotomy sample (n=2^20)"
      (Staged.stage (fun () -> ignore (Sample.trichotomy rng ~n:(1 lsl 20) ~p:1e-6)));
    Test.make ~name:"budget advance+can_jam (T=1024)"
      (let b = Budget.create ~window:1024 ~eps:0.5 in
       Staged.stage (fun () ->
           let jam = Budget.can_jam b in
           Budget.advance b ~jam));
    Test.make ~name:"lesk logic step"
      (let l = Core.Lesk.Logic.create ~eps:0.5 () in
       Staged.stage (fun () -> Core.Lesk.Logic.on_state l Jamming_channel.Channel.Collision));
    Test.make ~name:"intervals classify (slot=10^9)"
      (Staged.stage (fun () -> ignore (Core.Intervals.classify 1_000_000_000)));
  ]

let benchmark tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" ~fmt:"%s %s" tests) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let ns v =
  if v >= 1e9 then Printf.sprintf "%8.3f s " (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%8.3f ms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%8.3f us" (v /. 1e3)
  else Printf.sprintf "%8.1f ns" v

let print_results results =
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> Float.nan
        in
        (name, est) :: acc)
      clock []
  in
  List.iter
    (fun (name, est) -> Printf.printf "  %s/run   %s\n" (ns est) name)
    (List.sort compare rows)

(* --- Part 2: metered table regeneration + BENCH_<date>.json --- *)

module Telemetry = Jamming_telemetry.Telemetry
module Json = Jamming_telemetry.Json
module Gauges = Jamming_sim.Gauges

(* One metered experiment: fresh telemetry sink (captures Runner-level
   counters and the experiment wall timer), Gauges deltas for the slots
   simulated by cells that drive the engines directly. *)
let meter_experiment ~scale out e =
  let tel = Telemetry.create () in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  E.Experiments.run_one ~telemetry:tel ~scale out e;
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  let wall = Telemetry.timer_seconds tel "experiment.wall" in
  Json.Obj
    [
      ("id", Json.String e.E.Registry.id);
      ("name", Json.String e.E.Registry.name);
      ("wall_s", Json.Float wall);
      ("slots", Json.Int slots);
      ("runs", Json.Int runs);
      ( "slots_per_sec",
        if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
    ]

let iso_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let cell_field json field =
  Option.bind (Json.member field json) Json.to_float_opt

(* Gating comparison against a previous BENCH_*.json: prints the
   slots/sec ratio per cell and FAILS the run (exit 1) when any cell
   falls below [gate_threshold] of its baseline throughput.  Set
   BENCH_GATE=off (or 0/no/false) to downgrade the gate to
   informational — the escape hatch CI documents for known-noisy
   runners and intentional slowdowns that land with a regenerated
   baseline.  Offending cells are listed on stdout and, when
   GITHUB_STEP_SUMMARY is set, appended to the job summary. *)
let gate_threshold = 0.5

let gate_enabled () =
  match Sys.getenv_opt "BENCH_GATE" with
  | Some ("off" | "0" | "no" | "false") -> false
  | Some _ | None -> true

let append_step_summary lines =
  match Sys.getenv_opt "GITHUB_STEP_SUMMARY" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc

let diff_against_baseline ~path cells =
  match Json.read_file ~path with
  | Error msg -> Printf.printf "baseline %s unreadable (%s); skipping diff\n" path msg
  | Ok baseline ->
      let baseline_cells =
        match Option.bind (Json.member "experiments" baseline) Json.to_list_opt with
        | Some l -> l
        | None -> []
      in
      let lookup id =
        List.find_opt
          (fun c -> Option.bind (Json.member "id" c) Json.to_string_opt = Some id)
          baseline_cells
      in
      let offenders = ref [] in
      Printf.printf "\n--- slots/sec vs baseline %s (gate: < %.0f%%%s fails) ---\n" path
        (gate_threshold *. 100.0)
        (if gate_enabled () then "" else "; BENCH_GATE=off, informational");
      List.iter
        (fun cell ->
          match Option.bind (Json.member "id" cell) Json.to_string_opt with
          | None -> ()
          | Some id -> (
              match
                ( cell_field cell "slots_per_sec",
                  Option.bind (lookup id) (fun b -> cell_field b "slots_per_sec") )
              with
              | Some now, Some before when before > 0.0 ->
                  let regressed = now < gate_threshold *. before in
                  Printf.printf "  %-4s %+7.1f%%  (%.3g -> %.3g slots/s)%s\n" id
                    ((now /. before -. 1.0) *. 100.0)
                    before now
                    (if regressed then "  << below gate" else "");
                  if regressed then offenders := (id, before, now) :: !offenders
              | _ -> Printf.printf "  %-4s (no baseline entry)\n" id))
        cells;
      match List.rev !offenders with
      | [] -> ()
      | offs ->
          Printf.printf "\nbench gate: %d cell(s) below %.0f%% of baseline slots/sec:\n"
            (List.length offs)
            (gate_threshold *. 100.0);
          List.iter
            (fun (id, before, now) ->
              Printf.printf "  %-4s %.3g -> %.3g slots/s (%.2fx)\n" id before now
                (now /. before))
            offs;
          append_step_summary
            ([
               "## Bench gate: slots/sec regressions";
               "";
               Printf.sprintf
                 "Cells below %.0f%% of `%s` (escape hatch: rerun with \
                  `BENCH_GATE=off`, or land a regenerated baseline):"
                 (gate_threshold *. 100.0) path;
               "";
               "| cell | baseline slots/s | now slots/s | ratio |";
               "| --- | --- | --- | --- |";
             ]
            @ List.map
                (fun (id, before, now) ->
                  Printf.sprintf "| %s | %.3g | %.3g | %.2fx |" id before now
                    (now /. before))
                offs);
          if gate_enabled () then begin
            Printf.printf "bench gate FAILED (BENCH_GATE=off bypasses)\n";
            exit 1
          end
          else Printf.printf "bench gate bypassed (BENCH_GATE=off)\n"

(* --- exact-engine large-n scaling cells (X1..X3) ---

   Early-finishing workload: station i retires after ceil(horizon *
   ((i+1)/n)^16) slots, a power-law tail under which the live population
   collapses quickly — total station-steps are ~ n*horizon/17, so the
   active-set engine (X1, X3) does an order of magnitude less station
   work than the reference engine (X2), which pays O(n) every slot.
   X2's slots/sec is the committed-baseline figure the active-set
   speedup is measured against. *)

module Engine = Jamming_sim.Engine
module Station = Jamming_station.Station

let staggered_factory ~horizon ~n : Station.factory =
 fun ~id ~rng:_ ->
  let retire =
    let frac = float_of_int (id + 1) /. float_of_int n in
    Int.max 1 (int_of_float (Float.ceil (float_of_int horizon *. (frac ** 16.0))))
  in
  let fin = ref false in
  {
    Station.id;
    decide = (fun ~slot:_ -> Station.Listen);
    observe =
      (fun ~slot ~perceived:_ ~transmitted:_ -> if slot + 1 >= retire then fin := true);
    status = (fun () -> Station.Non_leader);
    finished = (fun () -> !fin);
  }

let scaling_cell ~id ~name ~oracle ~n ~horizon ~reps =
  let tel = Telemetry.create () in
  let timer = Telemetry.timer tel "cell.wall" in
  (* Stations are single-use closures, so each rep needs a fresh array;
     build them all before starting the timer — the cell meters the
     engine's slot loop, not station construction. *)
  let prepared =
    List.init reps (fun rep ->
        let rng = Prng.create ~seed:(rep + 1) in
        Engine.make_stations ~n ~rng (staggered_factory ~horizon ~n))
  in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  Telemetry.start timer;
  List.iter
    (fun stations ->
      let budget = Budget.create ~window:64 ~eps:0.5 in
      let run = if oracle then Engine.run_reference else Engine.run in
      ignore
        (run ~cd:Jamming_channel.Channel.Strong_cd
           ~adversary:(Adversary.none ())
           ~budget ~max_slots:(horizon + 16) ~stations ()))
    prepared;
  Telemetry.stop timer;
  let wall = Telemetry.timer_seconds tel "cell.wall" in
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  Json.Obj
    [
      ("id", Json.String id);
      ("name", Json.String name);
      ("wall_s", Json.Float wall);
      ("slots", Json.Int slots);
      ("runs", Json.Int runs);
      ( "slots_per_sec",
        if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
    ]

(* --- run-store overhead cells (X4, X5) ---

   X4 meters the cold path (compute + persist into a throwaway private
   store), X5 the warm path (hit + decode) over the identical cells, so
   X5/X4 slots-per-sec directly reads off what a cache hit buys.  The
   store lives under the system temp dir and is deleted afterwards —
   the cells never touch results/cache/. *)

module Store = Jamming_store.Store
module Atomic_io = Jamming_store.Atomic_io

let store_overhead_cell ~id ~name ~store ~reps =
  let setup = { E.Runner.n = 4096; eps = 0.5; window = 64; max_slots = 2_000_000 } in
  let engine = E.Runner.Uniform (E.Specs.lesk ~eps:0.5) in
  let slots_of sample =
    Array.fold_left
      (fun acc r -> acc + r.Jamming_sim.Metrics.slots)
      0 sample.E.Runner.results
  in
  let t0 = Unix.gettimeofday () in
  let slots = ref 0 in
  for base_seed = 1 to reps do
    let sample =
      E.Runner.replicate ~base_seed ~store ~engine ~reps:4 setup E.Specs.greedy
    in
    slots := !slots + slots_of sample
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Json.Obj
    [
      ("id", Json.String id);
      ("name", Json.String name);
      ("wall_s", Json.Float wall);
      ("slots", Json.Int !slots);
      ("runs", Json.Int (reps * 4));
      ( "slots_per_sec",
        if wall > 0.0 then Json.Float (float_of_int !slots /. wall) else Json.Null );
    ]

let store_overhead_cells () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jamming-bench-store.%d" (Unix.getpid ()))
  in
  Atomic_io.remove_tree root;
  let store = Store.create ~root () in
  let reps = 16 in
  let cold =
    store_overhead_cell ~id:"X4" ~name:"store-cold-compute-persist-n4096" ~store ~reps
  in
  let warm =
    store_overhead_cell ~id:"X5" ~name:"store-warm-hit-decode-n4096" ~store ~reps
  in
  let stats = Store.io_stats store in
  Atomic_io.remove_tree root;
  (match (cell_field cold "wall_s", cell_field warm "wall_s") with
  | Some cw, Some ww when ww > 0.0 ->
      Printf.printf
        "run-store overhead (n=4096 LESK cells): cold compute+persist %.3fs vs warm \
         hit+decode %.3fs (%.1fx); %d hits / %d misses\n"
        cw ww (cw /. ww) stats.Store.hits stats.Store.misses
  | _ -> ());
  [ cold; warm ]

(* --- domain-pool speedup cells (P1, P2) ---

   The identical replicate grid through Runner.run_cells at jobs=1 (P1)
   and jobs=recommended (P2): P2/P1 slots-per-sec is the committed
   parallel-speedup figure CI's BENCH_BASELINE diff tracks, and the two
   passes must produce byte-identical sample JSON (the pool's
   determinism contract).  The store is bypassed so both passes really
   compute. *)

let parallel_grid () =
  List.concat_map
    (fun n ->
      List.map
        (fun adversary ->
          E.Runner.Cell.v ~base_seed:7
            ~engine:(E.Runner.Uniform (E.Specs.lesk ~eps:0.5))
            ~reps:48
            { E.Runner.n; eps = 0.5; window = 64; max_slots = 2_000_000 }
            adversary)
        [ E.Specs.greedy; E.Specs.random_jam ~p:0.5 ])
    [ 256; 4096 ]

let parallel_cell ~id ~name ~jobs =
  let pool = E.Runner.Pool.create ~jobs () in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  let t0 = Unix.gettimeofday () in
  let outcomes = E.Runner.run_cells pool (parallel_grid ()) in
  let wall = Unix.gettimeofday () -. t0 in
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  let digest =
    String.concat "\n"
      (List.map
         (function
           | E.Runner.Sample s ->
               Json.to_string (E.Runner.sample_to_json ~include_results:true s)
           | E.Runner.Churned cs ->
               Json.to_string (E.Runner.churn_sample_to_json ~include_results:true cs))
         outcomes)
  in
  ( Json.Obj
      [
        ("id", Json.String id);
        ("name", Json.String name);
        ("jobs", Json.Int jobs);
        ("wall_s", Json.Float wall);
        ("slots", Json.Int slots);
        ("runs", Json.Int runs);
        ( "slots_per_sec",
          if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
      ],
    digest )

let parallel_cells () =
  let saved = !E.Runner.default_store in
  E.Runner.set_store None;
  Fun.protect
    ~finally:(fun () -> E.Runner.default_store := saved)
    (fun () ->
      let jobs = E.Runner.recommended_jobs () in
      let serial, d1 = parallel_cell ~id:"P1" ~name:"pool-sweep-jobs1" ~jobs:1 in
      let parallel, dn =
        parallel_cell ~id:"P2" ~name:"pool-sweep-jobsmax" ~jobs
      in
      if not (String.equal d1 dn) then
        failwith "P-cells: jobs=1 and jobs=max sweeps are NOT byte-identical";
      (match (cell_field serial "wall_s", cell_field parallel "wall_s") with
      | Some w1, Some wn when wn > 0.0 ->
          Printf.printf
            "domain-pool sweep: jobs=1 %.3fs vs jobs=%d %.3fs (%.1fx); outputs \
             byte-identical\n"
            w1 jobs wn (w1 /. wn)
      | _ -> ());
      [ serial; parallel ])

(* --- aggregate-engine population-scale cells (G1, G2) ---

   LESK on the class-population counting engine at n = 10^7 and 10^9
   under the greedy jammer: a slot costs one binomial draw (plus the
   budget/adversary bookkeeping) whatever n is, so the two cells'
   slots/sec must stay within ~2x of each other.  That flatness — and
   the absolute throughput — is what the BENCH_BASELINE diff watches.
   The store is bypassed so the cells really compute. *)

let aggregate_cell ~id ~name ~n ~reps =
  let setup = { E.Runner.n; eps = 0.5; window = 64; max_slots = 200_000 } in
  let engine = E.Runner.aggregate_lesk ~eps:0.5 () in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  let t0 = Unix.gettimeofday () in
  let sample = E.Runner.replicate ~engine ~reps setup E.Specs.greedy in
  let wall = Unix.gettimeofday () -. t0 in
  if not (E.Runner.all_completed sample) then
    failwith (Printf.sprintf "%s: an aggregate election hit the slot cap" id);
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  Json.Obj
    [
      ("id", Json.String id);
      ("name", Json.String name);
      ("wall_s", Json.Float wall);
      ("slots", Json.Int slots);
      ("runs", Json.Int runs);
      ( "slots_per_sec",
        if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
    ]

let aggregate_cells () =
  let saved = !E.Runner.default_store in
  E.Runner.set_store None;
  Fun.protect
    ~finally:(fun () -> E.Runner.default_store := saved)
    (fun () ->
      let g1 =
        aggregate_cell ~id:"G1" ~name:"aggregate-lesk-n1e7" ~n:10_000_000 ~reps:100
      in
      let g2 =
        aggregate_cell ~id:"G2" ~name:"aggregate-lesk-n1e9" ~n:1_000_000_000 ~reps:100
      in
      (match (cell_field g1 "slots_per_sec", cell_field g2 "slots_per_sec") with
      | Some a, Some b when b > 0.0 ->
          Printf.printf
            "aggregate engine: n=1e7 %.3g slots/s vs n=1e9 %.3g slots/s (ratio %.2fx — \
             slot cost is n-independent)\n"
            a b (a /. b)
      | _ -> ());
      [ g1; g2 ])

(* --- weak-CD notification-path cells (X6, X7) ---

   The flat-pool engine behind the weak-CD protocols (DESIGN.md §15).
   X6 runs the same pooled LEWK cell twice — once on the pool, once on
   the closure oracle it replaced — asserts the two samples are
   bit-identical, and prints the speedup; X6R (the closure side) stays
   in the report so the baseline diff keeps tracking the old path too.
   X7 is the pool alone at n = 10^4, the population the closure engine
   was too slow to bench.  The store is bypassed so every cell really
   computes. *)

let notification_cell ~id ~name ~engine ~n ~reps =
  let setup = { E.Runner.n; eps = 0.5; window = 64; max_slots = 2_000_000 } in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  let t0 = Unix.gettimeofday () in
  let sample = E.Runner.replicate ~engine ~reps setup E.Specs.greedy in
  let wall = Unix.gettimeofday () -. t0 in
  if not (E.Runner.all_completed sample) then
    failwith (Printf.sprintf "%s: a weak-CD election hit the slot cap" id);
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  ( Json.Obj
      [
        ("id", Json.String id);
        ("name", Json.String name);
        ("wall_s", Json.Float wall);
        ("slots", Json.Int slots);
        ("runs", Json.Int runs);
        ( "slots_per_sec",
          if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
      ],
    sample )

let weak_cd_cells () =
  let saved = !E.Runner.default_store in
  E.Runner.set_store None;
  Fun.protect
    ~finally:(fun () -> E.Runner.default_store := saved)
    (fun () ->
      let x6, pooled =
        notification_cell ~id:"X6" ~name:"pooled-lewk-n1e3"
          ~engine:(E.Runner.pooled_lewk ~eps:0.5 ())
          ~n:1_000 ~reps:20
      in
      let x6r, closure =
        notification_cell ~id:"X6R" ~name:"closure-lewk-n1e3"
          ~engine:
            (exact_engine ~name:"LEWK" ~cd:Jamming_channel.Channel.Weak_cd
               (Core.Lewk.station ~eps:0.5 ()))
          ~n:1_000 ~reps:20
      in
      (* The pooled spec shares the Exact seed tags, so the two samples
         must be equal result for result — the bench-level oracle. *)
      if pooled <> closure then
        failwith "X6: pooled LEWK sample diverged from the closure oracle";
      (match (cell_field x6 "slots_per_sec", cell_field x6r "slots_per_sec") with
      | Some p, Some c when c > 0.0 ->
          Printf.printf
            "weak-CD notification path (n=10^3 LEWK): pool %.3g slots/s vs closure %.3g \
             slots/s (%.1fx); samples bit-identical\n"
            p c (p /. c)
      | _ -> ());
      let x7, _ =
        notification_cell ~id:"X7" ~name:"pooled-lewu-n1e4"
          ~engine:(E.Runner.pooled_lewu ()) ~n:10_000 ~reps:50
      in
      [ x6; x6r; x7 ])

(* --- energy metering cells (M1..M3) ---

   M1 and M2 are the identical exact-engine LESK cell unmetered and
   metered: their slots/sec ratio is the whole-run cost of the
   Energy.Meter (a couple of array writes per event, so expected within
   noise of 1x).  M3 is the LMR election at n = 10^5 with metering on —
   the log-logarithmic awake-time protocol exercising the pool's sleep
   absorption at population scale.  The store is bypassed so every cell
   really computes. *)

let energy_cell ~id ~name ~engine ~energy ~n ~reps =
  let setup = { E.Runner.n; eps = 0.5; window = 64; max_slots = 2_000_000 } in
  let slots0 = Gauges.slots_simulated () and runs0 = Gauges.runs_completed () in
  let t0 = Unix.gettimeofday () in
  let sample = E.Runner.replicate ~energy ~engine ~reps setup E.Specs.greedy in
  let wall = Unix.gettimeofday () -. t0 in
  if not (E.Runner.all_completed sample) then
    failwith (Printf.sprintf "%s: an election hit the slot cap" id);
  if energy && Float.is_nan (E.Runner.median_awake_slots sample) then
    failwith (Printf.sprintf "%s: metered sample lost its energy blocks" id);
  let slots = Gauges.slots_simulated () - slots0 in
  let runs = Gauges.runs_completed () - runs0 in
  Json.Obj
    [
      ("id", Json.String id);
      ("name", Json.String name);
      ("wall_s", Json.Float wall);
      ("slots", Json.Int slots);
      ("runs", Json.Int runs);
      ( "slots_per_sec",
        if wall > 0.0 then Json.Float (float_of_int slots /. wall) else Json.Null );
    ]

let energy_cells () =
  let saved = !E.Runner.default_store in
  E.Runner.set_store None;
  Fun.protect
    ~finally:(fun () -> E.Runner.default_store := saved)
    (fun () ->
      let lesk =
        exact_engine ~name:"LESK-exact" ~cd:Jamming_channel.Channel.Strong_cd
          (Core.Lesk.station ~eps:0.5)
      in
      let m1 =
        energy_cell ~id:"M1" ~name:"exact-lesk-n4096-unmetered" ~engine:lesk
          ~energy:false ~n:4096 ~reps:12
      in
      let m2 =
        energy_cell ~id:"M2" ~name:"exact-lesk-n4096-metered" ~engine:lesk
          ~energy:true ~n:4096 ~reps:12
      in
      (match (cell_field m1 "slots_per_sec", cell_field m2 "slots_per_sec") with
      | Some off, Some on_ when on_ > 0.0 ->
          Printf.printf
            "energy metering overhead (n=4096 exact LESK): unmetered %.3g slots/s vs \
             metered %.3g slots/s (%.2fx)\n"
            off on_ (off /. on_)
      | _ -> ());
      let m3 =
        energy_cell ~id:"M3" ~name:"pooled-lmr-n1e5-metered"
          ~engine:(E.Runner.pooled_lmr ()) ~energy:true ~n:100_000 ~reps:12
      in
      [ m1; m2; m3 ])

let scaling_cells () =
  let horizon = 2048 in
  let cells =
    [
      scaling_cell ~id:"X1" ~name:"exact-active-set-n1e4" ~oracle:false ~n:10_000
        ~horizon ~reps:3;
      scaling_cell ~id:"X2" ~name:"exact-reference-n1e4" ~oracle:true ~n:10_000 ~horizon
        ~reps:3;
      scaling_cell ~id:"X3" ~name:"exact-active-set-n1e5" ~oracle:false ~n:100_000
        ~horizon ~reps:1;
    ]
  in
  (match
     ( List.nth_opt cells 0 |> Option.map (fun c -> cell_field c "slots_per_sec"),
       List.nth_opt cells 1 |> Option.map (fun c -> cell_field c "slots_per_sec") )
   with
  | Some (Some active), Some (Some reference) when reference > 0.0 ->
      Printf.printf
        "exact-engine scaling (n=10^4, early-finishing): active set %.3g slots/s vs \
         reference %.3g slots/s (%.1fx)\n"
        active reference (active /. reference)
  | _ -> ());
  cells

let () =
  let scale =
    match Sys.getenv_opt "BENCH_FULL" with
    | Some ("1" | "true" | "yes") -> E.Registry.Full
    | Some _ | None -> E.Registry.Quick
  in
  let skip_micro =
    match Sys.getenv_opt "BENCH_SKIP_MICRO" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  (* Same cache switches as the CLIs, hand-parsed (bechamel owns no
     argv conventions here): --cache / --no-cache / --resume /
     --cache-dir DIR, with BENCH_CACHE=1 as the env default. *)
  let argv = Array.to_list Sys.argv in
  let has flag = List.mem flag argv in
  let cache_dir =
    let rec find = function
      | "--cache-dir" :: dir :: _ -> dir
      | _ :: rest -> find rest
      | [] -> "results/cache"
    in
    find argv
  in
  let env_cache =
    match Sys.getenv_opt "BENCH_CACHE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  let store =
    if (has "--cache" || has "--resume" || env_cache) && not (has "--no-cache") then
      Some (Store.create ~root:cache_dir ())
    else None
  in
  E.Runner.set_store store;
  E.Runner.default_jobs := E.Runner.recommended_jobs ();
  if not skip_micro then begin
    print_endline "=== Bechamel microbenchmarks (time per representative run) ===";
    print_endline "--- simulator primitives ---";
    print_results (benchmark primitive_tests);
    print_endline "--- one representative run per experiment ---";
    print_results (benchmark experiment_tests)
  end;
  Printf.printf "\n=== Experiment tables and figures (%s scale) ===\n"
    (match scale with E.Registry.Quick -> "quick" | E.Registry.Full -> "full");
  let out = E.Output.to_formatter Format.std_formatter in
  let t0 = Unix.gettimeofday () in
  let slots0 = Gauges.slots_simulated () in
  let cells = List.map (meter_experiment ~scale out) E.Experiments.all in
  Printf.printf "\n=== Exact-engine large-n scaling (X1..X3) ===\n";
  let cells = cells @ scaling_cells () in
  Printf.printf "\n=== Run-store overhead (X4..X5) ===\n";
  let cells = cells @ store_overhead_cells () in
  Printf.printf "\n=== Domain-pool speedup (P1..P2) ===\n";
  let cells = cells @ parallel_cells () in
  Printf.printf "\n=== Aggregate-engine population scale (G1..G2) ===\n";
  let cells = cells @ aggregate_cells () in
  Printf.printf "\n=== Weak-CD notification path (X6..X7) ===\n";
  let cells = cells @ weak_cd_cells () in
  Printf.printf "\n=== Energy metering (M1..M3) ===\n";
  let cells = cells @ energy_cells () in
  let wall = Unix.gettimeofday () -. t0 in
  let total_slots = Gauges.slots_simulated () - slots0 in
  let date = iso_date () in
  let report =
    Json.Obj
      ([
         ("schema", Json.String "jamming-election.bench/1");
         ("date", Json.String date);
         ("scale", Json.String (match scale with E.Registry.Full -> "full" | _ -> "quick"));
         ("jobs", Json.Int !E.Runner.default_jobs);
         ("experiments", Json.List cells);
         ( "totals",
           Json.Obj
             [
               ("wall_s", Json.Float wall);
               ("slots", Json.Int total_slots);
               ( "slots_per_sec",
                 if wall > 0.0 then Json.Float (float_of_int total_slots /. wall)
                 else Json.Null );
             ] );
       ]
      @ match store with Some st -> [ ("store", Store.stats_json st) ] | None -> [])
  in
  let path = Printf.sprintf "BENCH_%s.json" date in
  Atomic_io.write_json ~path report;
  Printf.printf "\nbench report written: %s (%d experiments, %d slots, %.1fs)\n" path
    (List.length cells) total_slots wall;
  match Sys.getenv_opt "BENCH_BASELINE" with
  | Some p when String.trim p <> "" -> diff_against_baseline ~path:p cells
  | Some _ | None -> ()
