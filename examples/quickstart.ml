(* Quickstart: elect a leader among 1000 stations while an adaptive
   adversary jams half of every 64-slot window.

   Run with:  dune exec examples/quickstart.exe *)

module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Lesk = Jamming_core.Lesk
module Metrics = Jamming_sim.Metrics

let () =
  let n = 1000 in
  let eps = 0.5 (* the adversary must leave an eps fraction of each window *) in
  let window = 64 (* the adversary's T *) in

  (* Every run is reproducible from a seed. *)
  let rng = Prng.create ~seed:2015 in

  (* LESK (Algorithm 1 of the paper): the stations know eps but not n. *)
  let protocol = Lesk.uniform ~eps () in

  (* A greedy (T, 1-eps)-bounded jammer: it jams every slot the budget
     allows.  The budget enforcement is exact, so whatever the strategy
     asks for, the executed jamming is legal. *)
  let adversary = Adversary.greedy () in
  let budget = Budget.create ~window ~eps in

  let result =
    Jamming_sim.Uniform_engine.run ~n ~rng ~protocol ~adversary ~budget ~max_slots:100_000 ()
  in

  Format.printf "@[<v>%a@]@." Metrics.pp_result result;
  (match result.Metrics.leader with
  | Some id -> Format.printf "station %d is the leader.@." id
  | None -> Format.printf "no leader elected (raise max_slots?)@.");
  Format.printf "theory shape max{T, log n/(eps^3 log(1/eps))} = %.0f slots@."
    (Lesk.expected_time_bound ~eps ~n ~window)
