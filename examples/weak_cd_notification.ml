(* Weak collision detection: a station cannot transmit and listen at the
   same time, so the winner of the selection does not know it won.  The
   Notification transformation (Section 3) fixes this with the C1/C2/C3
   interval handshake:

     - algorithm A (here LESK) runs inside C1 until some station l lands
       the first Single — everyone but l hears it;
     - the rest re-run A in C2; the next Single tells l (the only station
       still watching) that it is the leader;
     - l broadcasts in every C3 slot; non-leaders block C1 until they
       hear l's C3 Single, then leave; the first quiet C1 slot tells l
       that everyone knows.

   This example prints the handshake as it happens, under jamming.

   Run with:  dune exec examples/weak_cd_notification.exe *)

module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Channel = Jamming_channel.Channel
module Notification = Jamming_core.Notification
module Metrics = Jamming_sim.Metrics

let () =
  let n = 10 and eps = 0.5 and window = 16 in
  Format.printf "n = %d stations, weak-CD, greedy (T = %d, 1-%.1f)-bounded jammer.@.@." n
    window eps;
  let on_phase ~id ~slot phase =
    Format.printf "slot %6d  station %2d -> %a@." slot id Notification.pp_phase phase
  in
  let factory = Jamming_core.Lewk.station ~on_phase ~eps () in
  let rng = Prng.create ~seed:4 in
  let stations = Jamming_sim.Engine.make_stations ~n ~rng factory in
  let budget = Budget.create ~window ~eps in
  let trace = Jamming_sim.Trace.create ~capacity:96 in
  let result =
    Jamming_sim.Engine.run
      ~observers:[ Jamming_sim.Observer.of_on_slot (Jamming_sim.Trace.record trace) ]
      ~cd:Channel.Weak_cd
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:1_000_000 ~stations ()
  in
  Format.printf "@.%a@." Metrics.pp_result result;
  Array.iteri
    (fun id st ->
      Format.printf "station %2d: %s@." id (Jamming_station.Station.status_to_string st))
    result.Metrics.statuses;
  (* Timeline of the final stretch: which interval family each slot
     belongs to, and what happened on the channel. *)
  let records = Jamming_sim.Trace.to_list trace in
  (match records with
  | [] -> ()
  | first :: _ ->
      Format.printf
        "@.timeline of the last %d slots (families: 1/2/3 = C1/C2/C3, . = idle;@.events:  \
         J = jammed, ! = Single, 0 = Null, x = collision):@."
        (List.length records);
      let family (r : Jamming_sim.Metrics.slot_record) =
        match Jamming_core.Intervals.classify r.Jamming_sim.Metrics.slot with
        | Jamming_core.Intervals.Idle -> '.'
        | Jamming_core.Intervals.C1 _ -> '1'
        | Jamming_core.Intervals.C2 _ -> '2'
        | Jamming_core.Intervals.C3 _ -> '3'
      in
      let event (r : Jamming_sim.Metrics.slot_record) =
        if r.Jamming_sim.Metrics.jammed then 'J'
        else
          match r.Jamming_sim.Metrics.state with
          | Channel.Single -> '!'
          | Channel.Null -> '0'
          | Channel.Collision -> 'x'
      in
      let row f = String.init (List.length records) (fun i -> f (List.nth records i)) in
      Format.printf "slot %6d  %s@." first.Jamming_sim.Metrics.slot (row family);
      Format.printf "            %s@." (row event));
  Format.printf "@.every station terminated knowing its role — Lemma 3.1 in action.@."
