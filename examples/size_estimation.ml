(* The building blocks promised in the paper's conclusions (Section 4):
   size approximation and k-selection, both running on the same
   jamming-robust machinery.

   Run with:  dune exec examples/size_estimation.exe *)

module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Size_approx = Jamming_core.Size_approx
module K_selection = Jamming_core.K_selection

let () =
  let eps = 0.5 and window = 32 in

  Format.printf "--- size approximation under greedy jamming ---@.";
  List.iter
    (fun n ->
      let rng = Prng.create ~seed:(7 * n) in
      let budget = Budget.create ~window ~eps in
      let outcome =
        Size_approx.run ~n ~rng
          ~adversary:(Adversary.greedy ())
          ~budget ~max_slots:200_000 ()
      in
      Format.printf "n = %7d: %a@." n Size_approx.pp_outcome outcome;
      match outcome with
      | Size_approx.Estimate { round; _ } ->
          Format.printf "            Lemma 2.8 band: %s@."
            (if Size_approx.within_lemma_2_8_band ~round ~n ~window then "inside"
             else "OUTSIDE")
      | Size_approx.Leader_elected _ | Size_approx.Exhausted _ -> ())
    [ 100; 10_000; 1_000_000 ];

  Format.printf "@.--- refinement: constant-factor size estimates, still jammed ---@.";
  List.iter
    (fun n ->
      let rng = Prng.create ~seed:(3 * n) in
      let budget = Budget.create ~window ~eps in
      let r =
        Size_approx.refine ~n ~rng ~adversary:(Adversary.greedy ()) ~budget
          ~max_slots:500_000 ()
      in
      Format.printf "n = %7d: %a@." n Size_approx.pp_refined r)
    [ 100; 10_000; 1_000_000 ];
  Format.printf
    "The refinement probes q = 2^-j and inverts Null frequencies; taking ratios to the \
     observed plateau cancels the jamming rate, so the estimate is a small constant \
     factor off even with half the slots jammed (vs the sqrt-to-4th-power bracket of \
     the coarse estimator).@.";

  Format.printf "@.--- k-selection: pick 5 coordinators out of 200 ---@.";
  let rng = Prng.create ~seed:123 in
  let budget = Budget.create ~window ~eps in
  let outcome =
    K_selection.run ~k:5 ~n:200 ~eps ~rng
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:500_000 ()
  in
  List.iteri
    (fun i (r : K_selection.round_result) ->
      Format.printf "round %d: winner after %d slots (index %d of the remaining pool)@."
        (i + 1) r.K_selection.slots r.K_selection.winner_index)
    outcome.K_selection.rounds;
  Format.printf "total: %d slots, completed = %b@." outcome.K_selection.total_slots
    outcome.K_selection.completed;
  Format.printf
    "@.The whole chain shares one (T, 1-eps) jam budget: the adversary does not reset \
     between rounds.@.";

  Format.printf "@.--- the same, in weak-CD (winners must LEARN they won) ---@.";
  let rng = Prng.create ~seed:7 in
  let budget = Budget.create ~window ~eps in
  let o =
    K_selection.run_weak_cd ~k:3 ~n:12 ~eps ~rng
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:5_000_000 ()
  in
  Format.printf "winners (original ids, in order): %s — %d slots, completed = %b@."
    (String.concat ", " (List.map string_of_int o.K_selection.winners))
    o.K_selection.slots o.K_selection.completed;
  Format.printf
    "Each weak-CD round is a full Notification handshake, so every selected coordinator \
     terminates knowing its rank.@."
