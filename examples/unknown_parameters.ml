(* The paper's headline feature: the stations know NOTHING — not the
   network size n, not the adversary's window T, not the jamming
   tolerance eps.  LESU (Algorithm 2) first estimates max{log n, T} with
   the jamming-robust Estimation function, then sweeps guessed
   tolerances eps_j = 2^{-j/3} through time-boxed LESK runs.

   This example traces the whole ladder.

   Run with:  dune exec examples/unknown_parameters.exe *)

module Prng = Jamming_prng.Prng
module Budget = Jamming_adversary.Budget
module Adversary = Jamming_adversary.Adversary
module Lesu = Jamming_core.Lesu
module Uniform = Jamming_station.Uniform
module Metrics = Jamming_sim.Metrics

let () =
  let n = 5000 and eps = 0.5 and window = 128 in
  Format.printf
    "n = %d stations (unknown to them), adversary: (T = %d, 1 - %.1f)-bounded (also \
     unknown).@.@."
    n window eps;
  let logic = Lesu.Logic.create () in
  let last_stage = ref (Lesu.Logic.stage logic) in
  let describe slot stage =
    match stage with
    | Lesu.Estimating round -> Format.printf "slot %6d: estimation, round %d@." slot round
    | Lesu.Electing { i; j; eps_hat } ->
        Format.printf "slot %6d: LESK phase (i=%d, j=%d), guessed eps = %.3f@." slot i j
          eps_hat
    | Lesu.Done -> Format.printf "slot %6d: leader elected.@." slot
  in
  let protocol =
    {
      Uniform.name = "LESU-traced";
      tx_prob = (fun () -> Lesu.Logic.tx_prob logic);
      on_state =
        (fun state ->
          Lesu.Logic.on_state logic state;
          if Lesu.Logic.elected logic then Uniform.Elected else Uniform.Continue);
    }
  in
  let rng = Prng.create ~seed:99 in
  let budget = Budget.create ~window ~eps in
  let result =
    Jamming_sim.Uniform_engine.run
      ~observers:
        [
          Jamming_sim.Observer.of_on_slot (fun r ->
              let stage = Lesu.Logic.stage logic in
              if stage <> !last_stage then begin
                describe r.Metrics.slot stage;
                last_stage := stage
              end);
        ]
      ~n ~rng ~protocol
      ~adversary:(Adversary.greedy ())
      ~budget ~max_slots:2_000_000 ()
  in
  Format.printf "@.%a@." Metrics.pp_result result;
  (match Lesu.Logic.t0 logic with
  | Some t0 ->
      Format.printf
        "Estimation produced t0 = %.0f (a stand-in for c*max{log n = %.1f, T = %d}).@." t0
        (Float.log2 (float_of_int n))
        window
  | None -> ());
  Format.printf
    "True eps was %.2f; the schedule only needed a guess within a factor 2 (eps_j = \
     2^(-j/3) sweeps that grid).@."
    eps
