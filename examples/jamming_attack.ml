(* The motivating scenario of the paper's introduction: a DoS-style
   jammer needs no special hardware, just the will to transmit noise —
   and classic contention-resolution protocols crumble while LESK does
   not.

   We pit binary exponential backoff (the 802.11-style rule, see the
   paper's reference [4]), Willard's log-log selection protocol, and
   LESK against the same greedy (T, 1-eps)-bounded jammer.

   Run with:  dune exec examples/jamming_attack.exe *)

module E = Jamming_experiments

let () =
  let n = 512 and eps = 0.4 and window = 64 in
  let setup = { E.Runner.n; eps; window; max_slots = 250_000 } in
  let reps = 12 in
  Format.printf
    "Scenario: n = %d stations, adversary may jam %.0f%% of every %d-slot window.@.@." n
    ((1.0 -. eps) *. 100.0)
    window;
  let table =
    E.Table.create ~title:"Election time (median slots over 12 seeded runs)"
      ~columns:
        [
          ("protocol", E.Table.Left);
          ("no jamming", E.Table.Right);
          ("greedy jammer", E.Table.Right);
          ("slowdown", E.Table.Right);
        ]
  in
  List.iter
    (fun protocol ->
      let engine = E.Runner.Uniform protocol in
      let benign = E.Runner.replicate ~engine ~reps setup E.Specs.no_jamming in
      let jammed = E.Runner.replicate ~engine ~reps setup E.Specs.greedy in
      let mb = E.Runner.median_slots benign and mj = E.Runner.median_slots jammed in
      E.Table.add_row table
        [
          protocol.E.Specs.p_name;
          E.Table.fmt_slots ~capped:(not (E.Runner.all_completed benign)) mb;
          E.Table.fmt_slots ~capped:(not (E.Runner.all_completed jammed)) mj;
          (if E.Runner.all_completed jammed then E.Table.fmt_ratio (mj /. mb)
           else "stalled");
        ])
    [ E.Specs.backoff; E.Specs.willard; E.Specs.lesk ~eps ];
  Format.printf "%s@." (E.Table.render table);
  Format.printf
    "Backoff interprets every jammed slot as congestion and silences itself; Willard's \
     binary search is steered astray.  LESK treats Collisions as nearly worthless \
     evidence (+eps/8) and harvests the un-fakeable Nulls (-1), so the jammer only \
     stretches time by a constant factor.@."
